// Command ignite-load is the open-loop load generator for ignite-serve: it
// fires invocation requests on a deterministic arrival schedule (Poisson,
// diurnal, or bursty/self-similar) at a target rate, measures latency from
// each request's *scheduled* arrival (so generator lateness counts instead
// of being coordinated-omitted away), and reports p50/p99/p999 plus
// achieved throughput as a versioned JSON document.
//
// Usage:
//
//	ignite-load -url http://127.0.0.1:8080 -rps 1000 -duration 5s
//	ignite-load -rps 10000 -duration 10s -process poisson -out load-report.json
//	ignite-load -function Curr-N -config nl -mode back-to-back -rps 200
//	ignite-load -rps 500 -duration 2s -strict      # exit 1 on any non-2xx
//
// A run has two phases. The prime phase (default 250ms at 2000 req/s,
// disable with -prime-rps 0) fires a Poisson burst at the cold cell; those
// concurrent requests coalesce in the server's batcher, which is where the
// reported coalescing ratio (batched requests per batch, >1 under any
// concurrency) comes from. The measured phase then drives the schedule
// against the now-hot cell and owns every latency number in the report.
// Server-side numbers are the /metrics deltas scraped around both phases.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"ignite/internal/cfgcli"
	"ignite/internal/loadgen"
	"ignite/internal/obs"
	"ignite/internal/serve"
)

func main() {
	urlFlag := flag.String("url", "http://127.0.0.1:8080", "base URL of the ignite-serve daemon")
	fnFlag := flag.String("function", "Auth-G", "function name to invoke")
	cfgFlag := flag.String("config", "ignite", "front-end configuration")
	modeFlag := flag.String("mode", "interleaved", "inter-invocation mode: interleaved or back-to-back")
	rpsFlag := flag.Float64("rps", 1000, "target request rate of the measured phase")
	durFlag := flag.Duration("duration", 5*time.Second, "measured-phase duration")
	procFlag := flag.String("process", "poisson", "arrival process: poisson, diurnal, bursty")
	seedFlag := flag.Uint64("seed", 1, "arrival-schedule seed (same seed, same schedule)")
	sendersFlag := flag.Int("senders", 64, "sender worker pool size")
	primeRPSFlag := flag.Float64("prime-rps", 2000, "prime-phase Poisson rate at the cold cell (0 disables priming)")
	primeDurFlag := flag.Duration("prime-duration", 250*time.Millisecond, "prime-phase duration")
	timeoutFlag := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	retriesFlag := flag.Int("retries", 0, "max retries per shed (429) request, honoring the server's Retry-After")
	outFlag := flag.String("out", "", "write the JSON load report to this path")
	strictFlag := flag.Bool("strict", false, "exit 1 if any measured request failed (CI smoke)")
	flag.Parse()

	ctx, stop := cfgcli.SignalContext()
	defer stop()

	proc, err := loadgen.ParseProcess(*procFlag)
	if err != nil {
		cfgcli.Exit("ignite-load", nil, cfgcli.Usage("%v", err))
	}
	body, err := json.Marshal(serve.InvokeRequest{
		SchemaVersion: serve.SchemaVersion,
		Function:      *fnFlag,
		Config:        *cfgFlag,
		Mode:          *modeFlag,
	})
	if err != nil {
		cfgcli.Exit("ignite-load", nil, err)
	}
	base := strings.TrimRight(*urlFlag, "/")
	invokeURL := base + serve.PathInvoke

	before, err := scrapeMetrics(base)
	if err != nil {
		cfgcli.Exit("ignite-load", nil, fmt.Errorf("ignite-load: pre-run metrics scrape: %w", err))
	}

	if *primeRPSFlag > 0 && *primeDurFlag > 0 {
		prime, err := loadgen.Run(ctx, loadgen.RunConfig{
			URL:      invokeURL,
			Body:     body,
			Schedule: loadgen.Schedule(loadgen.Poisson, *primeRPSFlag, *primeDurFlag, *seedFlag+1),
			Senders:  *sendersFlag,
			Timeout:  *timeoutFlag,
		})
		if err != nil {
			cfgcli.Exit("ignite-load", ctx, err)
		}
		if prime.OK == 0 {
			cfgcli.Exit("ignite-load", nil, fmt.Errorf(
				"ignite-load: prime phase got no 2xx from %s (statuses: %v)", invokeURL, prime.StatusCount))
		}
		fmt.Fprintf(os.Stderr, "primed %s/%s: %d requests, %d ok\n", *fnFlag, *cfgFlag, prime.Sent, prime.OK)
	}

	schedule := loadgen.Schedule(proc, *rpsFlag, *durFlag, *seedFlag)
	stats, err := loadgen.Run(ctx, loadgen.RunConfig{
		URL:         invokeURL,
		Body:        body,
		Schedule:    schedule,
		Senders:     *sendersFlag,
		Timeout:     *timeoutFlag,
		ShedRetries: *retriesFlag,
	})
	if err != nil {
		cfgcli.Exit("ignite-load", ctx, err)
	}

	report := loadgen.Report{
		Function:    *fnFlag,
		Config:      *cfgFlag,
		Mode:        *modeFlag,
		Process:     string(proc),
		TargetRPS:   *rpsFlag,
		DurationSec: durFlag.Seconds(),
		Seed:        *seedFlag,
		Scheduled:   stats.Scheduled,
		Sent:        stats.Sent,
		OK:          stats.OK,
		Errors:      stats.Errors,
		Retries:     stats.Retries,
		StatusCount: stats.StatusCount,
		AchievedRPS: stats.AchievedRPS(),
		Latency:     loadgen.SummaryFrom(stats.Latency),
	}
	if after, err := scrapeMetrics(base); err != nil {
		fmt.Fprintf(os.Stderr, "ignite-load: post-run metrics scrape failed, serverSide omitted: %v\n", err)
	} else {
		report.ServerSide = serverSide(before, after)
	}

	printSummary(report)
	if *outFlag != "" {
		data, err := report.Encode()
		if err != nil {
			cfgcli.Exit("ignite-load", nil, err)
		}
		if err := obs.WriteFileAtomic(*outFlag, append(data, '\n'), 0o644); err != nil {
			cfgcli.Exit("ignite-load", nil, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outFlag)
	}
	if ctx.Err() != nil {
		cfgcli.Exit("ignite-load", ctx, nil)
	}
	if *strictFlag && stats.Errors > 0 {
		cfgcli.Exit("ignite-load", nil, fmt.Errorf("ignite-load: %d of %d requests failed (statuses: %v)",
			stats.Errors, stats.Sent, stats.StatusCount))
	}
}

// scrapeMetrics fetches and decodes the daemon's /metrics document.
func scrapeMetrics(base string) (serve.MetricsDocument, error) {
	resp, err := http.Get(base + serve.PathMetrics)
	if err != nil {
		return serve.MetricsDocument{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.MetricsDocument{}, err
	}
	return serve.DecodeMetrics(data)
}

// serverSide computes the serve.* metric deltas across the run.
func serverSide(before, after serve.MetricsDocument) loadgen.ServerSide {
	k := func(name string) string { return name + "{component=serve}" }
	delta := func(name string) float64 { return after.Value(k(name)) - before.Value(k(name)) }
	ss := loadgen.ServerSide{
		Requests:        delta("serve.requests"),
		FastPathHits:    delta("serve.fast_path_hits"),
		Batches:         delta("serve.batches"),
		BatchedRequests: delta("serve.batched_requests"),
		Shed:            delta("serve.shed"),
	}
	if s, ok := after.Get(k("serve.batch_size")); ok {
		ss.MaxBatchSize = s.Max
	}
	if ss.Batches > 0 {
		ss.CoalescingRatio = ss.BatchedRequests / ss.Batches
	}
	return ss
}

// printSummary renders the human-readable percentile table.
func printSummary(r loadgen.Report) {
	fmt.Printf("%s / %s / %s — %s arrivals at %.0f req/s for %.1fs (seed %d)\n",
		r.Function, r.Config, r.Mode, r.Process, r.TargetRPS, r.DurationSec, r.Seed)
	fmt.Printf("  scheduled      %d\n", r.Scheduled)
	fmt.Printf("  sent           %d (%d ok, %d failed, %d retried)\n", r.Sent, r.OK, r.Errors, r.Retries)
	fmt.Printf("  achieved       %.0f req/s\n", r.AchievedRPS)
	fmt.Printf("  latency (ms)   p50 %.3f   p99 %.3f   p999 %.3f   max %.3f\n",
		r.Latency.P50Ms, r.Latency.P99Ms, r.Latency.P999Ms, r.Latency.MaxMs)
	if r.ServerSide.Requests > 0 {
		fmt.Printf("  server         %.0f requests, %.0f fast-path, %.0f batches (%.0f coalesced, ratio %.1f, max %.0f), %.0f shed\n",
			r.ServerSide.Requests, r.ServerSide.FastPathHits, r.ServerSide.Batches,
			r.ServerSide.BatchedRequests, r.ServerSide.CoalescingRatio, r.ServerSide.MaxBatchSize, r.ServerSide.Shed)
	}
}
