// Command ignite-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ignite-bench -exp all                # every experiment, all 20 functions
//	ignite-bench -exp fig8,fig9a         # selected experiments
//	ignite-bench -exp fig3 -workloads Auth-G,Curr-N -parallel 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/workload"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs or 'all' (ids: "+strings.Join(experiments.IDs(), ",")+")")
	wlFlag := flag.String("workloads", "", "comma-separated function names (default: all 20)")
	parFlag := flag.Int("parallel", 0, "parallel workload simulations (default: NumCPU)")
	listFlag := flag.Bool("list", false, "list experiments and workloads, then exit")
	flag.Parse()

	if *listFlag {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-6s %s\n", id, experiments.Title(id))
		}
		fmt.Println("workloads:", strings.Join(workload.Names(), " "))
		return
	}

	opt := experiments.Options{Parallel: *parFlag}
	if *wlFlag != "" {
		for _, name := range strings.Split(*wlFlag, ",") {
			spec, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opt.Workloads = append(opt.Workloads, spec)
		}
	}

	var ids []string
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}
