// Command ignite-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ignite-bench -exp all                # every experiment, all 20 functions
//	ignite-bench -exp fig8,fig9a         # selected experiments
//	ignite-bench -exp fig3 -workloads Auth-G,Curr-N -parallel 4
//	ignite-bench -exp all -json          # also write BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/workload"
)

// expReport is the per-experiment entry of BENCH.json.
type expReport struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	WallClockNs int64  `json:"wallClockNs"`
	NsPerOp     int64  `json:"nsPerOp"` // identical to WallClockNs: one op = one experiment run
	AllocsPerOp uint64 `json:"allocsPerOp"`
	BytesPerOp  uint64 `json:"bytesPerOp"`
}

// benchReport is the BENCH.json document.
type benchReport struct {
	Generated   string      `json:"generated"`
	GoVersion   string      `json:"goVersion"`
	Workloads   int         `json:"workloads"`
	Parallel    int         `json:"parallel"`
	TotalNs     int64       `json:"totalNs"`
	CacheCells  int         `json:"cacheCells"`
	CacheHits   int         `json:"cacheHits"`
	Experiments []expReport `json:"experiments"`
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs or 'all' (ids: "+strings.Join(experiments.IDs(), ",")+")")
	wlFlag := flag.String("workloads", "", "comma-separated function names (default: all 20)")
	parFlag := flag.Int("parallel", 0, "parallel cell simulations (default: NumCPU)")
	listFlag := flag.Bool("list", false, "list experiments and workloads, then exit")
	jsonFlag := flag.Bool("json", false, "write per-experiment wall-clock and allocation metrics to BENCH.json")
	flag.Parse()

	if *listFlag {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-6s %s\n", id, experiments.Title(id))
		}
		fmt.Println("workloads:", strings.Join(workload.Names(), " "))
		return
	}

	// One shared cell cache across the selected experiments: cells that
	// recur (the nl baseline appears in five figures) are simulated once.
	opt := experiments.Options{Parallel: *parFlag, Cache: experiments.NewCellCache()}
	if *wlFlag != "" {
		for _, name := range strings.Split(*wlFlag, ",") {
			spec, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opt.Workloads = append(opt.Workloads, spec)
		}
	}

	var ids []string
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Workloads: len(opt.Workloads),
		Parallel:  *parFlag,
	}
	if report.Workloads == 0 {
		report.Workloads = len(workload.All())
	}
	totalStart := time.Now()
	var mem runtime.MemStats
	for _, id := range ids {
		runtime.ReadMemStats(&mem)
		mallocs, bytes := mem.Mallocs, mem.TotalAlloc
		start := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&mem)
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", id, elapsed.Seconds())
		report.Experiments = append(report.Experiments, expReport{
			ID:          id,
			Title:       experiments.Title(id),
			WallClockNs: elapsed.Nanoseconds(),
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: mem.Mallocs - mallocs,
			BytesPerOp:  mem.TotalAlloc - bytes,
		})
	}
	report.TotalNs = time.Since(totalStart).Nanoseconds()
	report.CacheCells, report.CacheHits = opt.Cache.Stats()

	if *jsonFlag {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote BENCH.json (%d experiments, %d unique cells, %d cache hits)\n",
			len(report.Experiments), report.CacheCells, report.CacheHits)
	}
}
