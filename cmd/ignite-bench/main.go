// Command ignite-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ignite-bench -exp all                # every experiment, all 20 functions
//	ignite-bench -exp fig8,fig9a         # selected experiments
//	ignite-bench -exp fig3 -workloads Auth-G,Curr-N -parallel 4
//	ignite-bench -exp all -json          # also write BENCH.json
//	ignite-bench -exp fig1 -out results/ # versioned JSON document per experiment
//	ignite-bench -exp all -progress      # narrate cell completions + ETA
//
// Ctrl-C cancels cleanly: in-flight simulation cells drain, unstarted ones
// are skipped, and the command exits non-zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/obs"
	"ignite/internal/workload"
)

// expReport is the per-experiment entry of BENCH.json.
type expReport struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	WallClockNs int64  `json:"wallClockNs"`
	NsPerOp     int64  `json:"nsPerOp"` // identical to WallClockNs: one op = one experiment run
	AllocsPerOp uint64 `json:"allocsPerOp"`
	BytesPerOp  uint64 `json:"bytesPerOp"`
}

// benchReport is the BENCH.json document.
type benchReport struct {
	Generated   string      `json:"generated"`
	GoVersion   string      `json:"goVersion"`
	Workloads   int         `json:"workloads"`
	Parallel    int         `json:"parallel"`
	TotalNs     int64       `json:"totalNs"`
	CacheCells  int         `json:"cacheCells"`
	CacheHits   int         `json:"cacheHits"`
	Experiments []expReport `json:"experiments"`
}

func idList() string {
	var b strings.Builder
	for i, id := range experiments.IDs() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(id))
	}
	return b.String()
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs or 'all' (ids: "+idList()+")")
	wlFlag := flag.String("workloads", "", "comma-separated function names (default: all 20)")
	parFlag := flag.Int("parallel", 0, "parallel cell simulations (default: NumCPU)")
	listFlag := flag.Bool("list", false, "list experiments and workloads, then exit")
	jsonFlag := flag.Bool("json", false, "write per-experiment wall-clock and allocation metrics to BENCH.json")
	outFlag := flag.String("out", "", "directory for machine-readable JSON result documents")
	progFlag := flag.Bool("progress", false, "report per-cell completion and ETA on stderr")
	tiFlag := flag.Uint64("target-instr", 0, "override per-invocation instruction budget (0 = each workload's own; CI smoke runs use a small value)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *listFlag {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-6s %s\n", id, experiments.Title(id))
		}
		fmt.Println("workloads:", strings.Join(workload.Names(), " "))
		return
	}

	// One shared cell cache across the selected experiments: cells that
	// recur (the nl baseline appears in five figures) are simulated once.
	opt := experiments.Options{Parallel: *parFlag, Cache: experiments.NewCellCache()}
	if *wlFlag != "" {
		for _, name := range strings.Split(*wlFlag, ",") {
			spec, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opt.Workloads = append(opt.Workloads, spec)
		}
	}
	if *tiFlag > 0 {
		if len(opt.Workloads) == 0 {
			opt.Workloads = workload.All()
		}
		for i := range opt.Workloads {
			opt.Workloads[i].TargetInstr = *tiFlag
		}
	}
	var reporter *obs.ProgressReporter
	if *progFlag {
		reporter = obs.NewProgressReporter(os.Stderr)
		opt.Tracer = reporter
	}

	var ids []experiments.ID
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, raw := range strings.Split(*expFlag, ",") {
			id := experiments.ID(strings.TrimSpace(raw))
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintln(os.Stderr, &experiments.UnknownIDError{ID: id, Valid: experiments.IDs()})
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Workloads: len(opt.Workloads),
		Parallel:  *parFlag,
	}
	if report.Workloads == 0 {
		report.Workloads = len(workload.All())
	}
	totalStart := time.Now()
	var mem runtime.MemStats
	var results []*experiments.Result
	for _, id := range ids {
		runtime.ReadMemStats(&mem)
		mallocs, bytes := mem.Mallocs, mem.TotalAlloc
		start := time.Now()
		res, err := experiments.Run(ctx, id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&mem)
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", id, elapsed.Seconds())
		results = append(results, res)
		report.Experiments = append(report.Experiments, expReport{
			ID:          string(id),
			Title:       experiments.Title(id),
			WallClockNs: elapsed.Nanoseconds(),
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: mem.Mallocs - mallocs,
			BytesPerOp:  mem.TotalAlloc - bytes,
		})
	}
	report.TotalNs = time.Since(totalStart).Nanoseconds()
	report.CacheCells, report.CacheHits = opt.Cache.Stats()
	if reporter != nil {
		cells, hits := reporter.Summary()
		fmt.Fprintf(os.Stderr, "%d cells (%d cache hits)\n", cells, hits)
	}

	if *outFlag != "" {
		man := opt.Manifest()
		man.Generated = report.Generated
		for _, res := range results {
			path, err := res.Document(man).WriteFile(*outFlag, string(res.ID))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	if *jsonFlag {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote BENCH.json (%d experiments, %d unique cells, %d cache hits)\n",
			len(report.Experiments), report.CacheCells, report.CacheHits)
	}
}
