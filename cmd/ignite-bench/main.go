// Command ignite-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ignite-bench -exp all                # every experiment, all 20 functions
//	ignite-bench -exp fig8,fig9a         # selected experiments
//	ignite-bench -exp fig3 -workloads Auth-G,Curr-N -parallel 4
//	ignite-bench -exp all -json          # also write BENCH.json
//	ignite-bench -exp fig1 -out results/ # versioned JSON document per experiment
//	ignite-bench -exp all -progress      # narrate cell completions + ETA
//	ignite-bench -exp all -fail-policy continue -out results/
//	ignite-bench -exp all -resume -out results/   # pick up an interrupted run
//
// With -fail-policy continue, a failing simulation cell degrades its figure
// (the cell is reported, healthy cells complete) instead of aborting the
// whole reproduction. With -out (or -journal), every computed cell is
// appended to a crash-safe journal; -resume reloads it so an interrupted
// run continues where it stopped. The IGNITE_FAULTS environment variable
// arms deterministic fault injection (see internal/faults) for chaos
// testing these paths.
//
// Ctrl-C cancels cleanly: in-flight simulation cells drain, unstarted ones
// are skipped, and the command exits with status 130. Simulation failures
// exit 1; usage errors exit 2.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ignite/internal/cfgcli"
	"ignite/internal/dist"
	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/obs"
	"ignite/internal/store"
	"ignite/internal/workload"
)

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// expReport is the per-experiment entry of BENCH.json.
type expReport struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	WallClockNs int64  `json:"wallClockNs"`
	NsPerOp     int64  `json:"nsPerOp"` // identical to WallClockNs: one op = one experiment run
	AllocsPerOp uint64 `json:"allocsPerOp"`
	BytesPerOp  uint64 `json:"bytesPerOp"`
}

// benchReport is the BENCH.json document.
type benchReport struct {
	Generated   string      `json:"generated"`
	Note        string      `json:"note,omitempty"`
	GoVersion   string      `json:"goVersion"`
	Workloads   int         `json:"workloads"`
	Parallel    int         `json:"parallel"`
	TotalNs     int64       `json:"totalNs"`
	CacheCells  int         `json:"cacheCells"`
	CacheHits   int         `json:"cacheHits"`
	Experiments []expReport `json:"experiments"`
}

func idList() string {
	var b strings.Builder
	for i, id := range experiments.IDs() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(id))
	}
	return b.String()
}

func main() {
	cf := cfgcli.New("ignite-bench")
	cf.BindCore(flag.CommandLine)
	cf.BindMatrix(flag.CommandLine)
	cf.BindJournal(flag.CommandLine)
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs or 'all' (ids: "+idList()+")")
	listFlag := flag.Bool("list", false, "list experiments and workloads, then exit")
	workerFlag := flag.Bool("worker", false, "run as a distributed-sweep worker: serve cell tasks on -listen until interrupted")
	listenFlag := flag.String("listen", "127.0.0.1:0", "worker listen address (with -worker; :0 picks a free port and prints it)")
	workersFlag := flag.Int("workers", 0, "spawn N supervised local worker processes and distribute cells across them (alias of -spawn-workers)")
	spawnWorkersFlag := flag.Int("spawn-workers", 0, "spawn N supervised local worker processes: crashed workers restart with capped backoff on stable addresses")
	workerAddrsFlag := flag.String("worker-addrs", "", "comma-separated addresses of already-running workers (alternative to -workers)")
	storeFlag := flag.String("store", "", "directory of the persistent content-addressed cell store (created if missing)")
	jsonFlag := flag.Bool("json", false, "write per-experiment wall-clock and allocation metrics to BENCH.json")
	benchoutFlag := flag.String("benchout", "", "write the benchmark report to this path (convention: BENCH_<n>.json, a committed trajectory of benchmark runs)")
	noteFlag := flag.String("benchnote", "", "free-form annotation embedded in the benchmark report (e.g. before/after hot-path numbers)")
	cpuFlag := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this path")
	outFlag := flag.String("out", "", "directory for machine-readable JSON result documents")
	progFlag := flag.Bool("progress", false, "report per-cell completion and ETA on stderr")
	flag.Parse()

	ctx, stop := cfgcli.SignalContext()
	defer stop()

	if *workerFlag {
		// Worker mode: no experiment selection, no documents — just serve
		// cell tasks until the coordinator (or the terminal) interrupts us.
		if err := dist.RunWorker(ctx, *listenFlag); err != nil {
			cfgcli.Exit("ignite-bench", ctx, err)
		}
		return
	}

	if *listFlag {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-6s %s\n", id, experiments.Title(id))
		}
		fmt.Println("workloads:", strings.Join(workload.Names(), " "))
		return
	}

	// One shared cell cache across the selected experiments: cells that
	// recur (the nl baseline appears in five figures) are simulated once.
	opt, err := cf.Options()
	if err != nil {
		cfgcli.Exit("ignite-bench", nil, err)
	}
	policy := opt.FailurePolicy
	var reporter *obs.ProgressReporter
	if *progFlag {
		reporter = obs.NewProgressReporter(os.Stderr)
		opt.Tracer = reporter
	}

	closeJournal, err := cf.AttachJournal(&opt, *outFlag)
	if err != nil {
		cfgcli.Exit("ignite-bench", nil, err)
	}
	defer closeJournal()

	// Persistent content-addressed cell store: warm records serve as pure
	// I/O, fresh cells are persisted, and the set is sealed under a Merkle
	// manifest on exit so the next run can prove nothing rotted in between.
	var cellStore *store.Store
	var storeStats *experiments.StoreStats
	if *storeFlag != "" {
		cellStore, err = store.Open(*storeFlag)
		if err != nil {
			cfgcli.Exit("ignite-bench", nil, err)
		}
		if merr := cellStore.ManifestErr(); merr != nil {
			fmt.Fprintf(os.Stderr, "ignite-bench: %v (store records will be recomputed and resealed)\n", merr)
		}
		storeStats = &experiments.StoreStats{}
		experiments.BindStore(opt.Cache, cellStore, storeStats)
	}

	// Distributed sweep: shard fresh cells across worker processes. Cells
	// already in the store never reach the wire — the backing is consulted
	// first — so a warm rerun with -workers is pure local I/O.
	spawnN := *spawnWorkersFlag
	if *workersFlag > 0 {
		if spawnN > 0 {
			cfgcli.Exit("ignite-bench", nil, cfgcli.Usage("ignite-bench: -workers and -spawn-workers are aliases; set one"))
		}
		spawnN = *workersFlag
	}
	var coord *dist.Coordinator
	var super *dist.Supervisor
	if spawnN > 0 || *workerAddrsFlag != "" {
		addrs := splitList(*workerAddrsFlag)
		if spawnN > 0 && len(addrs) > 0 {
			cfgcli.Exit("ignite-bench", nil, cfgcli.Usage("ignite-bench: -spawn-workers and -worker-addrs are mutually exclusive"))
		}
		if len(addrs) == 0 {
			super, err = dist.StartSupervisor(dist.SupervisorOptions{Workers: spawnN})
			if err != nil {
				cfgcli.Exit("ignite-bench", nil, err)
			}
			defer super.Close()
			addrs = super.Addrs()
			fmt.Fprintf(os.Stderr, "spawned %d supervised worker(s): %s\n", len(addrs), strings.Join(addrs, " "))
		}
		// The coordinator's wire inherits the network chaos plan (conn-reset,
		// slow-net, truncated-body, garbage-json rules): a plan without net
		// rules leaves the transport unwrapped.
		client := &http.Client{Transport: faults.NewTransport(opt.Faults, nil)}
		coord, err = dist.NewCoordinator(dist.CoordinatorOptions{Addrs: addrs, Client: client})
		if err != nil {
			cfgcli.Exit("ignite-bench", nil, err)
		}
		defer coord.Close()
		opt.Cache.SetRemote(coord.Remote())
	}

	var ids []experiments.ID
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, raw := range strings.Split(*expFlag, ",") {
			id := experiments.ID(strings.TrimSpace(raw))
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintln(os.Stderr, &experiments.UnknownIDError{ID: id, Valid: experiments.IDs()})
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Note:      *noteFlag,
		GoVersion: runtime.Version(),
		Workloads: len(opt.Workloads),
		Parallel:  cf.Parallel,
	}
	if report.Workloads == 0 {
		report.Workloads = len(workload.All())
	}
	if *cpuFlag != "" {
		f, err := os.Create(*cpuFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
	}
	totalStart := time.Now()
	var mem runtime.MemStats
	var results []*experiments.Result
	failed := false
	for _, id := range ids {
		if ctx.Err() != nil {
			break
		}
		runtime.ReadMemStats(&mem)
		mallocs, bytes := mem.Mallocs, mem.TotalAlloc
		start := time.Now()
		res, err := experiments.Run(ctx, id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			if policy == experiments.ContinueOnError && !errors.Is(err, context.Canceled) {
				continue
			}
			break
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&mem)
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", id, elapsed.Seconds())
		printFailures(res)
		if len(res.Failures) > 0 {
			failed = true
		}
		results = append(results, res)
		report.Experiments = append(report.Experiments, expReport{
			ID:          string(id),
			Title:       experiments.Title(id),
			WallClockNs: elapsed.Nanoseconds(),
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: mem.Mallocs - mallocs,
			BytesPerOp:  mem.TotalAlloc - bytes,
		})
	}
	if *cpuFlag != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", *cpuFlag)
	}
	report.TotalNs = time.Since(totalStart).Nanoseconds()
	report.CacheCells, report.CacheHits = opt.Cache.Stats()
	if reporter != nil {
		cells, hits := reporter.Summary()
		fmt.Fprintf(os.Stderr, "%d cells (%d cache hits)\n", cells, hits)
	}
	printHealth(opt.Health)
	if coord != nil {
		tasks, steals, failovers := coord.Stats()
		fmt.Fprintf(os.Stderr, "dist: %d task(s) completed remotely, %d steal(s), %d failover(s)\n",
			tasks, steals, failovers)
		h := coord.Health()
		fmt.Fprintf(os.Stderr, "dist: %d worker failure(s), %d quarantine(s), %d readmit(s), %d probe(s), %d hedge(s) (%d won)\n",
			h.Failures, h.Quarantines, h.Readmits, h.Probes, h.Hedges, h.HedgeWins)
	}
	if super != nil {
		fmt.Fprintf(os.Stderr, "dist: %d worker restart(s)\n", super.Restarts())
	}
	if cellStore != nil {
		fmt.Fprintf(os.Stderr, "store: %d hit(s), %d miss(es), %d save(s), %d corruption(s) detected\n",
			storeStats.Hits.Value(), storeStats.Misses.Value(),
			storeStats.Saves.Value(), storeStats.Corrupt.Value())
		if root, n, err := cellStore.Seal(); err != nil {
			fmt.Fprintf(os.Stderr, "ignite-bench: seal store: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "store: sealed %d record(s), merkle root %s\n", n, root)
		}
	}

	if *outFlag != "" {
		man := opt.Manifest()
		man.Generated = report.Generated
		for _, res := range results {
			path, err := res.Document(man).WriteFile(*outFlag, string(res.ID))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	benchPaths := make([]string, 0, 2)
	if *jsonFlag {
		benchPaths = append(benchPaths, "BENCH.json")
	}
	if *benchoutFlag != "" {
		benchPaths = append(benchPaths, *benchoutFlag)
	}
	if len(benchPaths) > 0 {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, path := range benchPaths {
			if err := obs.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d experiments, %d unique cells, %d cache hits)\n",
				path, len(report.Experiments), report.CacheCells, report.CacheHits)
		}
	}

	switch {
	case ctx.Err() != nil:
		fmt.Fprintln(os.Stderr, "ignite-bench: interrupted")
		os.Exit(130)
	case failed:
		os.Exit(1)
	}
}

// printFailures renders a degraded experiment's per-cell failure table.
func printFailures(res *experiments.Result) {
	if len(res.Failures) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %d degraded cell(s):\n", res.ID, len(res.Failures))
	fmt.Fprintf(os.Stderr, "  %-12s %-16s %-8s %-8s %s\n",
		"workload", "config", "status", "attempts", "error")
	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "  %-12s %-16s %-8s %-8d %s\n",
			f.Workload, f.Config, f.Status, f.Attempts, f.Err)
	}
}

// printHealth summarizes the run-health counters when anything degraded.
func printHealth(h *obs.RunHealth) {
	p, r, d := h.Panics.Load(), h.Retries.Load(), h.Deadlines.Load()
	f, s := h.Failed.Load(), h.Skipped.Load()
	if p+r+d+f+s == 0 {
		return
	}
	fmt.Fprintf(os.Stderr,
		"run health: %d panic(s) recovered, %d retry(ies), %d deadline hit(s), %d cell(s) failed, %d skipped\n",
		p, r, d, f, s)
}
