module ignite

go 1.22
