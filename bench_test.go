// Package bench provides one testing.B benchmark per paper table/figure.
// Each benchmark regenerates its experiment on a reduced workload set (two
// functions, halved invocations) and reports the experiment's headline
// numbers as custom benchmark metrics, so `go test -bench=. -benchmem`
// doubles as a quick reproduction run. Use cmd/ignite-bench for the
// full-scale versions over all 20 functions.
package bench

import (
	"context"
	"runtime"
	"testing"

	"ignite/internal/experiments"
	"ignite/internal/workload"
)

func benchOpts(b *testing.B) experiments.Options {
	b.Helper()
	var specs []workload.Spec
	for _, name := range []string{"Auth-G", "Curr-N"} {
		s, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		s.TargetInstr /= 2
		specs = append(specs, s)
	}
	return experiments.Options{Workloads: specs, Parallel: 2}
}

func runExperiment(b *testing.B, id experiments.ID, metrics func(*experiments.Result, *testing.B)) {
	b.Helper()
	opt := benchOpts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(context.Background(), id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && metrics != nil {
			metrics(res, b)
		}
	}
}

// BenchmarkRunAll times the complete all-figures reproduction (the 15 paper
// tables/figures) on the bench subset through the cell scheduler with a
// shared cell cache — the path cmd/ignite-bench -exp all takes. Compare
// against BenchmarkRunAllSerialNoCache (in internal/experiments) for the
// pre-scheduler baseline.
func BenchmarkRunAll(b *testing.B) {
	opt := benchOpts(b)
	opt.Parallel = runtime.NumCPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh cache per iteration: reuse happens within one
		// all-figures run, never across benchmark iterations.
		opt.Cache = experiments.NewCellCache()
		if _, err := experiments.RunAll(context.Background(), experiments.PaperIDs(), opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "tab1", nil)
}

func BenchmarkTable2(b *testing.B) {
	runExperiment(b, "tab2", nil)
}

func BenchmarkFig1(b *testing.B) {
	runExperiment(b, "fig1", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "degradationPct"), "CPI-degradation-%")
		b.ReportMetric(r.Get("Mean", "frontendShare")*100, "frontend-share-%")
	})
}

func BenchmarkFig2(b *testing.B) {
	runExperiment(b, "fig2", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "instrKiB"), "instr-WS-KiB")
		b.ReportMetric(r.Get("Mean", "btbEntries"), "branch-WS-entries")
	})
}

func BenchmarkFig3(b *testing.B) {
	runExperiment(b, "fig3", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "jukebox/speedup"), "jukebox-speedup")
		b.ReportMetric(r.Get("Mean", "boomerang+jb/speedup"), "boomerang+jb-speedup")
		b.ReportMetric(r.Get("Mean", "ideal/speedup"), "ideal-speedup")
	})
}

func BenchmarkFig4(b *testing.B) {
	runExperiment(b, "fig4", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "+warm-btb/speedup"), "warm-btb-speedup")
		b.ReportMetric(r.Get("Mean", "+warm-cbp/speedup"), "warm-cbp-speedup")
	})
}

func BenchmarkFig5(b *testing.B) {
	runExperiment(b, "fig5", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "+bim-warm/cbpmpki"), "bim-warm-CBP-MPKI")
		b.ReportMetric(r.Get("Mean", "+tage-warm/cbpmpki"), "tage-warm-CBP-MPKI")
	})
}

func BenchmarkFig6(b *testing.B) {
	runExperiment(b, "fig6", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "sharePct"), "initial-mispredict-%")
	})
}

func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "fig8", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "ignite/speedup"), "ignite-speedup")
		b.ReportMetric(r.Get("Mean", "ignite+tage/speedup"), "ignite+tage-speedup")
		b.ReportMetric(r.Get("Mean", "ideal/speedup"), "ideal-speedup")
	})
}

func BenchmarkFig9a(b *testing.B) {
	runExperiment(b, "fig9a", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "ignite/l1impki"), "ignite-L1I-MPKI")
		b.ReportMetric(r.Get("Mean", "ignite/btbmpki"), "ignite-BTB-MPKI")
		b.ReportMetric(r.Get("Mean", "ignite/cbpmpki"), "ignite-CBP-MPKI")
	})
}

func BenchmarkFig9b(b *testing.B) {
	runExperiment(b, "fig9b", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "coveredPct"), "initial-covered-%")
	})
}

func BenchmarkFig9c(b *testing.B) {
	runExperiment(b, "fig9c", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "l2OverPct"), "L2-overpredicted-%")
		b.ReportMetric(r.Get("Mean", "btbOverPct"), "BTB-overpredicted-%")
		b.ReportMetric(r.Get("Mean", "cbpInducedPct"), "CBP-induced-%")
	})
}

func BenchmarkFig10(b *testing.B) {
	runExperiment(b, "fig10", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("nl", "uselessKiB"), "nl-useless-KiB")
		b.ReportMetric(r.Get("ignite", "totalKiB"), "ignite-total-KiB")
	})
}

func BenchmarkFig11(b *testing.B) {
	runExperiment(b, "fig11", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "bim-wt/speedup"), "weakly-taken-speedup")
		b.ReportMetric(r.Get("Mean", "bim-wnt/speedup"), "weakly-not-taken-speedup")
	})
}

func BenchmarkFig12(b *testing.B) {
	runExperiment(b, "fig12", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(r.Get("Mean", "confluence/speedup"), "confluence-speedup")
		b.ReportMetric(r.Get("Mean", "confluence+ignite/speedup"), "confluence+ignite-speedup")
		b.ReportMetric(r.Get("Mean", "fdp+ignite/speedup"), "fdp+ignite-speedup")
	})
}
