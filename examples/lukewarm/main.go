// Lukewarm reproduces the paper's Figure 1 phenomenon on a single function:
// interleaved (lukewarm) invocations versus back-to-back invocations, with
// the top-down CPI stack showing where the cycles go.
package main

import (
	"fmt"
	"log"
	"os"

	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

func main() {
	name := "Curr-N"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	prog, _, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (%s): %s\n\n", spec.Name, spec.Lang, spec.FullName)
	var cpis [2]float64
	for i, mode := range []lukewarm.Mode{lukewarm.BackToBack, lukewarm.Interleaved} {
		setup, err := sim.NewWithProgram(spec, prog, sim.KindNL)
		if err != nil {
			log.Fatal(err)
		}
		res, err := setup.Run(mode)
		if err != nil {
			log.Fatal(err)
		}
		st := res.CPIStack()
		cpis[i] = st.Total()
		fmt.Printf("%-14s CPI %.3f\n", mode, st.Total())
		fmt.Printf("  retiring     %.3f\n", st.Retiring)
		fmt.Printf("  fetch-bound  %.3f   <- instruction delivery stalls\n", st.Fetch)
		fmt.Printf("  bad-spec     %.3f   <- BTB misses + branch mispredictions\n", st.BadSpec)
		fmt.Printf("  backend      %.3f\n\n", st.Backend)
	}
	fmt.Printf("interleaving increases CPI by %.0f%%; the front end (fetch + bad\n",
		(cpis[1]/cpis[0]-1)*100)
	fmt.Println("speculation) accounts for most of the degradation — the paper's")
	fmt.Println("lukewarm-invocation bottleneck.")
}
