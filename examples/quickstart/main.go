// Quickstart: record one invocation of a serverless function with Ignite,
// thrash the microarchitectural state (as thousands of interleaved
// invocations would), replay on the next invocation, and watch the
// front-end miss rates collapse.
//
// The replay itself is observed through the obs tracing hooks: an inline
// Tracer prints when Ignite starts streaming metadata and how many records
// it restored.
package main

import (
	"fmt"
	"log"

	"ignite/internal/engine"
	"ignite/internal/ignite"
	"ignite/internal/memsys"
	"ignite/internal/obs"
	"ignite/internal/workload"
)

// replayNarrator prints Ignite's replay activity. Embedding obs.BaseTracer
// keeps the unused hooks no-ops.
type replayNarrator struct{ obs.BaseTracer }

func (replayNarrator) ReplayStart(e obs.ReplayStartEvent) {
	fmt.Printf("%-28s %s streaming %d B of metadata (cycle %d)\n",
		"  -> replay start", e.Mechanism, e.Bytes, e.Now)
}

func (replayNarrator) ReplayEnd(e obs.ReplayEndEvent) {
	fmt.Printf("%-28s %s restored %d records (cycle %d)\n",
		"  -> replay end", e.Mechanism, e.Restored, e.Now)
}

func main() {
	// 1. Build a synthetic serverless function (Auth-G: the Go
	//    authentication function, ~250 KiB instruction working set).
	spec, err := workload.ByName("Auth-G")
	if err != nil {
		log.Fatal(err)
	}
	prog, _, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the simulated core (Table 2 configuration, FDP enabled)
	//    and install Ignite for this function's container. The tracer is
	//    optional: without one the hot path pays nothing.
	cfg := engine.DefaultConfig()
	cfg.FDPEnabled = true
	eng := engine.New(prog, cfg)
	eng.SetTracer(replayNarrator{})
	store := memsys.NewStore()
	ig := ignite.New(ignite.DefaultConfig(), eng, store, "quickstart")
	ig.Install()

	run := func(label string, seed uint64) *engine.InvocationStats {
		st, err := eng.RunInvocation(engine.InvocationOptions{Seed: seed, MaxInstr: spec.MaxInstr()})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s CPI %.3f | L1I %5.1f MPKI | BTB %5.1f MPKI | CBP %5.1f MPKI\n",
			label, st.CPI(), st.L1IMPKI(), st.BTBMPKI(), st.CBPMPKI())
		return st
	}

	// 3. A lukewarm invocation with no help: thrash, then run.
	eng.Thrash(1)
	run("lukewarm, no Ignite", 1)

	// 4. Record an invocation: the OS enables recording, launches the
	//    function, then stops recording and arms replay.
	eng.Thrash(2)
	ig.StartRecord()
	run("record invocation", 2)
	ig.StopRecord()
	ig.ArmReplay()
	fmt.Printf("%-28s %d control-flow records in %d bytes of metadata\n",
		"  -> recorded", ig.Recorder().Records(), ig.MetadataUsed())

	// 5. The next lukewarm invocation replays the metadata: BTB and BIM
	//    are restored and the instruction working set streams into L2.
	eng.Thrash(3)
	run("lukewarm, Ignite replay", 3)

	// 6. Every counter the run touched is also available through the
	//    typed metrics registry — the same snapshot the CLIs export as
	//    versioned JSON documents (ignite-bench -out / ignite-sim -out).
	reg := obs.NewRegistry()
	eng.RegisterMetrics(reg, nil)
	ig.RegisterMetrics(reg, nil)
	snap := reg.Snapshot().Values()
	fmt.Printf("\nregistry: %d metrics; ignite.restored=%.0f btb.restored_inserts=%.0f\n",
		len(snap), snap["ignite.restored{component=ignite}"],
		snap["btb.restored_inserts{component=btb}"])
}
