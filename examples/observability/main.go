// Observability: drive one simulation through the redesigned sim API
// (functional options instead of a positional Tweaks struct), stream
// structured events through an obs.Tracer, and export the full metric
// snapshot as a versioned JSON document — the same machine-readable form
// ignite-bench -out and ignite-sim -out write.
package main

import (
	"fmt"
	"log"
	"os"

	"ignite/internal/lukewarm"
	"ignite/internal/obs"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

func main() {
	spec, err := workload.ByName("Auth-G")
	if err != nil {
		log.Fatal(err)
	}
	// A quarter of the usual budget: this example is about plumbing, not
	// paper-fidelity numbers.
	spec.TargetInstr /= 4

	// A Collector buffers every event; NewWriterTracer(os.Stderr) would
	// stream them as JSON lines instead. MultiTracer fans out to both.
	events := &obs.Collector{}

	// Functional options replace the old positional Tweaks struct:
	// unrelated knobs compose without zero-value placeholders.
	setup, err := sim.New(spec, sim.KindIgnite,
		sim.WithThrottleThreshold(64),
		sim.WithTracer(events),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := setup.Run(lukewarm.Interleaved)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s / ignite: CPI %.3f, L1I %.1f MPKI, BTB %.1f MPKI\n",
		spec.Name, res.CPI(), res.L1IMPKI(), res.BTBMPKI())
	// With a quarter budget the invocation usually ends before the replay
	// stream drains, so replay_start events outnumber replay_end ones.
	fmt.Printf("events: %d invocations, %d replay streams started (%d drained)\n",
		events.Count("invocation_end"), events.Count("replay_start"),
		events.Count("replay_end"))

	// One registry aggregates every component's counters (engine, caches,
	// Ignite, prefetchers) plus the derived result gauges.
	reg := obs.NewRegistry()
	setup.RegisterMetrics(reg)
	res.RegisterMetrics(reg, nil)

	doc := obs.Document{
		SchemaVersion: obs.SchemaVersion,
		Kind:          obs.DocumentKind,
		ID:            "observability-example",
		Title:         "Observability example: Auth-G under Ignite",
		Cells: []obs.CellMetrics{{
			Workload: spec.Name,
			Config:   string(sim.KindIgnite),
			Metrics:  reg.Snapshot().Values(),
		}},
		Manifest: obs.Manifest{
			Parallel: 1,
			Workloads: []obs.WorkloadManifest{{
				Name: spec.Name, Seed: spec.Gen.Seed, TargetInstr: spec.TargetInstr,
			}},
		},
	}
	data, err := doc.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: schema v%d, %d metrics in one cell\n",
		doc.SchemaVersion, len(doc.Cells[0].Metrics))
	// Print the first few lines of the JSON document; WriteFile(dir, id)
	// persists the same bytes to <dir>/<id>.json.
	for i, b := 0, 0; i < len(data) && b < 8; i++ {
		if data[i] == '\n' {
			b++
		}
		os.Stdout.Write(data[i : i+1])
	}
	fmt.Println("  ...")
}
