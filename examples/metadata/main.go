// Metadata inspects Ignite's compressed control-flow records: it records an
// invocation, reports the compression achieved against naive 96-bit
// records, decodes the stream back, and verifies the round trip.
package main

import (
	"fmt"
	"log"

	"ignite/internal/btb"
	"ignite/internal/cfg"
	"ignite/internal/engine"
	"ignite/internal/ignite"
	"ignite/internal/memsys"
	"ignite/internal/workload"
)

func main() {
	spec, err := workload.ByName("AES-P")
	if err != nil {
		log.Fatal(err)
	}
	prog, _, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Record one lukewarm invocation by tapping BTB insertions manually.
	eng := engine.New(prog, engine.DefaultConfig())
	region := memsys.NewRegion(0x7f00_0000_0000, ignite.MaxMetadataBytes)
	codec := ignite.DefaultCodecConfig()
	rec := ignite.NewRecorder(codec, region, nil)
	rec.Attach(eng.BTB())
	rec.Start()

	var inserted []btb.Entry
	eng.BTB().OnInsert(func(e btb.Entry) { // chain: keep our own copy too
		rec.OnBTBInsert(e)
		inserted = append(inserted, e)
	})

	eng.Thrash(7)
	if _, err := eng.RunInvocation(engine.InvocationOptions{Seed: 7, MaxInstr: spec.MaxInstr()}); err != nil {
		log.Fatal(err)
	}
	rec.Stop()

	naiveBits := len(inserted) * 96
	fmt.Printf("function            %s (%s)\n", spec.Name, spec.FullName)
	fmt.Printf("BTB insertions      %d\n", len(inserted))
	fmt.Printf("records encoded     %d (dropped %d at the %d KiB cap)\n",
		rec.Records(), rec.Dropped, ignite.MaxMetadataBytes/1024)
	fmt.Printf("metadata size       %d bytes (%.1f bits/record)\n",
		region.Used(), float64(region.Used()*8)/float64(rec.Records()))
	fmt.Printf("naive 2x48-bit size %d bytes -> compression %.1fx\n",
		naiveBits/8, float64(naiveBits)/float64(region.Used()*8))

	// Decode the stream back and verify it reproduces the insertions.
	region.ResetRead()
	dec := ignite.NewDecoder(codec, region)
	var kinds [8]int
	i := 0
	for {
		r, ok, err := dec.Decode()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		if i < len(inserted) {
			want := inserted[i]
			if r.BranchPC != want.PC || r.Target != want.Target || r.Kind != want.Kind {
				log.Fatalf("record %d mismatch: got %+v want %+v", i, r, want)
			}
		}
		kinds[r.Kind]++
		i++
	}
	fmt.Printf("decoded records     %d (round trip verified)\n", i)
	fmt.Printf("branch mix          cond %d, uncond %d, call %d, return %d, ijump %d, icall %d\n",
		kinds[cfg.BranchCond], kinds[cfg.BranchUncond], kinds[cfg.BranchCall],
		kinds[cfg.BranchReturn], kinds[cfg.BranchIndirectJump], kinds[cfg.BranchIndirectCall])
}
