// Prefetchers compares the full front-end prefetcher ladder on one
// function: the next-line baseline, fetch-directed prefetching, Boomerang,
// Jukebox, their combination, Confluence, Ignite and the ideal front end.
package main

import (
	"fmt"
	"log"
	"os"

	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/stats"
	"ignite/internal/workload"
)

func main() {
	name := "Pay-N"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	prog, _, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	t := stats.NewTable(fmt.Sprintf("Lukewarm invocations of %s", spec.Name),
		"config", "CPI", "speedup", "L1I MPKI", "BTB MPKI", "CBP MPKI", "off-chip MPKI")
	var nlCPI float64
	for _, kind := range sim.Kinds() {
		setup, err := sim.NewWithProgram(spec, prog, kind)
		if err != nil {
			log.Fatal(err)
		}
		res, err := setup.Run(lukewarm.Interleaved)
		if err != nil {
			log.Fatal(err)
		}
		if kind == sim.KindNL {
			nlCPI = res.CPI()
		}
		t.AddRowf(string(kind), res.CPI(), nlCPI/res.CPI(),
			res.L1IMPKI(), res.BTBMPKI(), res.CBPMPKI(), res.OffChipMPKI())
	}
	fmt.Println(t.String())
	fmt.Println("Note how Boomerang fills the BTB but the cold conditional predictor")
	fmt.Println("still caps it, while Ignite restores instructions, BTB and BIM together.")
}
