// Multitenant demonstrates the fleet half of the reproduction: a serverless
// node hosts a thousand sampled functions whose recorded Ignite metadata
// competes for one shared DRAM budget. A population sampler draws synthetic
// functions from the paper's Figure-2 characterization distributions, an
// analytic cost model prices each tenant's cold and lukewarm invocations,
// and the budget market plays Poisson arrival schedules through a ladder of
// admission/eviction policies — printing the policy frontier: how much of
// the all-cold slowdown each policy buys back per byte of metadata budget.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ignite/internal/fleet/budget"
	"ignite/internal/fleet/population"
	"ignite/internal/loadgen"
)

func main() {
	// Sample the node's population: 1000 functions, ~70% inside the
	// paper's characterization bounds plus tiny hot utilities, huge
	// cold ML-style models, and chained workflow compositions.
	fns, err := population.Sample(population.Params{Seed: 42, N: 1000})
	if err != nil {
		log.Fatal(err)
	}
	tenants, err := budget.Tenants(fns, budget.Analytic{})
	if err != nil {
		log.Fatal(err)
	}
	var totalMeta uint64
	for _, t := range tenants {
		totalMeta += t.C.MetaBytes
	}
	fmt.Printf("population: %d functions, %.1f MiB total metadata if everyone stayed resident\n\n",
		len(tenants), float64(totalMeta)/(1<<20))

	// Sweep the policy × budget frontier. "oracle" is the no-budget upper
	// bound; speedups are against running every invocation cold.
	policies := []string{"lru", "benefit", "topk", "oracle"}
	budgets := []uint64{2 << 20, 8 << 20, 32 << 20}
	points, err := budget.Frontier(context.Background(), tenants, policies, budgets,
		budget.Params{Seed: 1, Duration: 30 * time.Second, Process: loadgen.Poisson})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s  %10s  %9s  %12s  %12s  %11s\n",
		"policy", "budget MiB", "hit ratio", "mean speedup", "p99 speedup", "evictions")
	for _, pt := range points {
		fmt.Printf("%-8s  %10d  %9.3f  %12.3f  %12.3f  %11d\n",
			pt.Policy, pt.BudgetBytes>>20, pt.HitRatio,
			pt.MeanSpeedup, pt.P99Speedup, pt.Evictions)
	}
	fmt.Println("\ncost-aware admission (benefit, topk) holds the frontier at small budgets;")
	fmt.Println("by 32 MiB every policy converges toward the no-budget oracle.")
}
