// Multitenant demonstrates the paper's Section 4.4 security story: Ignite
// injects branch targets into the BTB at replay time, so on a core with
// FEAT_CSV2-style BTB tagging, replayed entries are tagged with the owning
// VM and cannot steer another VM's speculation.
package main

import (
	"fmt"
	"log"

	"ignite/internal/btb"
	"ignite/internal/cfg"
)

func main() {
	b := btb.MustNew(btb.DefaultConfig())
	b.EnableTagging()

	// VM 1 runs a function whose Ignite replay restores a branch entry
	// pointing at an attacker-chosen gadget address.
	b.SetVM(1)
	gadget := uint64(0xdead000)
	victim := uint64(0x401000)
	b.Insert(btb.Entry{PC: victim, Target: gadget, Kind: cfg.BranchIndirectJump}, true)
	fmt.Println("VM 1 replays a BTB entry:", describe(b, victim))

	// VM 2 (the victim) executes a branch at the same PC. With tagging,
	// the lookup misses: VM 1's injected target cannot redirect VM 2.
	b.SetVM(2)
	fmt.Println("VM 2 looks it up:        ", describe(b, victim))

	// VM 2 trains its own entry; both coexist, each VM sees its own.
	b.Insert(btb.Entry{PC: victim, Target: 0x402000, Kind: cfg.BranchIndirectJump}, false)
	fmt.Println("VM 2 after training:     ", describe(b, victim))
	b.SetVM(1)
	fmt.Println("VM 1 still sees:         ", describe(b, victim))

	// Sanity: without tagging the injection would have been visible.
	open := btb.MustNew(btb.DefaultConfig())
	open.SetVM(1)
	open.Insert(btb.Entry{PC: victim, Target: gadget, Kind: cfg.BranchIndirectJump}, true)
	open.SetVM(2)
	if e, hit := open.Lookup(victim); hit && e.Target == gadget {
		fmt.Println("\nwithout tagging: VM 2 would speculate to VM 1's gadget",
			fmt.Sprintf("%#x", e.Target), "- the side channel Ignite must not widen")
	} else {
		log.Fatal("unexpected: untagged BTB did not share the entry")
	}
}

func describe(b *btb.BTB, pc uint64) string {
	if e, hit := b.Lookup(pc); hit {
		return fmt.Sprintf("hit, target %#x", e.Target)
	}
	return "miss (isolated)"
}
