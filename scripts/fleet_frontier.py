#!/usr/bin/env python3
"""Render the fleet-frontier figure: aggregate CPI speedup vs per-node
metadata budget, one series per admission policy.

Reads the versioned document ignite-fleet exports:

    ignite-fleet -out results/
    scripts/fleet_frontier.py results/fleet-frontier.json

Always emits a TSV of the plotted series (budget MiB, then one
mean/p50/p99 speedup triple per policy) to stdout or -o. When matplotlib
is importable, also writes <out>.png; the TSV is the canonical artifact so
the figure works on matplotlib-less CI boxes.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_series(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("kind") != "ignite.experiment-result" or doc.get("id") != "fleet-frontier":
        sys.exit(f"{path}: not a fleet-frontier result document")
    # Rows are keyed "policy/<n>MiB"; values carry the numeric budget too.
    series = defaultdict(dict)  # policy -> budget bytes -> row
    for key, row in doc["values"].items():
        policy = key.split("/", 1)[0]
        series[policy][int(row["budgetBytes"])] = row
    return series


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("document", help="fleet-frontier.json from ignite-fleet -out")
    ap.add_argument("-o", "--out", help="TSV output path (default stdout); PNG lands next to it")
    args = ap.parse_args()

    series = load_series(args.document)
    policies = sorted(series)
    budgets = sorted({b for rows in series.values() for b in rows})

    header = ["budget_mib"]
    for p in policies:
        header += [f"{p}_mean", f"{p}_p50", f"{p}_p99"]
    lines = ["\t".join(header)]
    for b in budgets:
        cells = [f"{b / (1 << 20):g}"]
        for p in policies:
            row = series[p].get(b)
            if row is None:
                cells += ["", "", ""]
            else:
                cells += [f"{row['meanSpeedup']:.4f}",
                          f"{row['p50Speedup']:.4f}",
                          f"{row['p99Speedup']:.4f}"]
        lines.append("\t".join(cells))
    tsv = "\n".join(lines) + "\n"

    if args.out:
        with open(args.out, "w") as f:
            f.write(tsv)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(tsv)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; TSV only", file=sys.stderr)
        return

    fig, axes = plt.subplots(1, 2, figsize=(9, 3.6), sharex=True)
    for metric, ax in zip(("meanSpeedup", "p99Speedup"), axes):
        for p in policies:
            xs = [b / (1 << 20) for b in budgets if b in series[p]]
            ys = [series[p][b][metric] for b in budgets if b in series[p]]
            ax.plot(xs, ys, marker="o", label=p)
        ax.set_xscale("log", base=2)
        ax.set_xlabel("metadata budget (MiB)")
        ax.set_ylabel({"meanSpeedup": "mean CPI speedup",
                       "p99Speedup": "p99 CPI speedup"}[metric])
        ax.axhline(1.0, color="gray", lw=0.5)
        ax.grid(True, alpha=0.3)
    axes[0].legend(fontsize=8)
    fig.suptitle("Fleet: CPI speedup vs per-node metadata budget")
    fig.tight_layout()
    png = (args.out or "fleet_frontier.tsv").rsplit(".", 1)[0] + ".png"
    fig.savefig(png, dpi=150)
    print(f"wrote {png}", file=sys.stderr)


if __name__ == "__main__":
    main()
