#!/usr/bin/env bash
# Tier-1 gate: build, vet, and run the full test suite under the race
# detector. The cell scheduler runs (workload, config) simulations on a
# bounded worker pool, so every test that goes through internal/experiments
# exercises the concurrent path; -race keeps that path honest.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# The full suite simulates hundreds of (workload, config) cells; under the
# race detector on a small machine that legitimately exceeds go test's 10m
# default timeout, so set an explicit budget.
go test -race -timeout 30m ./...

# Examples are real programs, not documentation snippets: they must keep
# compiling against the current API (the quickstart and observability
# examples are the first thing a reader runs).
for ex in examples/*/; do
  go build -o /dev/null "./${ex%/}"
done

# JSON export smoke: one tiny experiment through ignite-bench, exported as a
# versioned result document, decoded back by the same schema the golden test
# pins. Artifacts land in a scratch dir so CI runs leave the tree clean.
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
go build -o "$smoke/ignite-bench" ./cmd/ignite-bench
(
  cd "$smoke"
  ./ignite-bench \
    -exp fig1 -workloads Fib-G -target-instr 200000 -json -out results \
    >/dev/null
  test -s BENCH.json
  test -s results/fig1.json
  grep -q '"schemaVersion": 1' results/fig1.json
  grep -q '"kind": "ignite.experiment-result"' results/fig1.json
)

# Invariant-checking smoke: the same small figure with the runtime verifier
# enabled — every invocation of every cell is audited against the
# conservation laws in internal/check, and any violation aborts the run.
(
  cd "$smoke"
  IGNITE_CHECKS=1 ./ignite-bench \
    -exp fig8 -workloads Fib-G -target-instr 200000 -json -out results-checked \
    >/dev/null
  test -s results-checked/fig8.json
)

# Bench smoke: every benchmark must still run (one iteration each) — a
# benchmark that panics or no longer compiles is a broken promise to anyone
# comparing against the committed BENCH_<n>.json trajectory.
go test -run '^$' -bench=. -benchtime=1x ./internal/engine

# Batching path under the race detector, by name: the batched invocation
# entry point (engine.RunInvocations + the lukewarm protocol riding it) and
# the scratch-buffer handoff the experiment scheduler's worker pool recycles
# through a sync.Pool. The -race sweep above already covers these; the named
# pass keeps the hot-path refactor visible on its own.
go test -race -run 'TestBatchedInvocationAllocs|TestScratchHandoff|TestProperties/batch-equivalence' \
  ./internal/engine ./internal/check/props
go test -race -run 'TestScheduler' ./internal/experiments

# Mutation smoke: break every invariant on purpose and prove the checker
# fires, then run the metamorphic properties (the -race sweep above already
# covers these; this named pass keeps the verifier's own health visible even
# if the suite layout changes).
go test -run 'TestMutationSmoke|TestVerifyResult' ./internal/check
go test -run TestProperties ./internal/check/props

# Chaos pass: the full experiment sweep under the canonical smoke fault plan
# (one panic, one transient, one slow cell) plus the journal/scheduler chaos
# tests. The -race sweep above already runs these; the named pass keeps the
# fault-tolerance path visible on its own and honors a custom IGNITE_FAULTS.
IGNITE_FAULTS=smoke go test ./internal/experiments -run Chaos

# Serving smoke: boot the daemon on an ephemeral-ish port with tiny cells,
# drive one low-RPS ignite-load burst (strict: any non-2xx fails the build),
# then SIGTERM the daemon and require a clean drain (exit 0). The serve race
# pass by name keeps the batcher/scrape path visible on its own.
go build -o "$smoke/ignite-serve" ./cmd/ignite-serve
go build -o "$smoke/ignite-load" ./cmd/ignite-load
go test -race -run 'TestServerIntegration|TestBatcher|TestInstrumentsConcurrentScrape' \
  ./internal/serve ./internal/obs
(
  cd "$smoke"
  port=18431
  ./ignite-serve -addr "127.0.0.1:$port" -target-instr 100000 2>serve.log &
  serve_pid=$!
  for _ in $(seq 50); do
    curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && break
    sleep 0.1
  done
  ./ignite-load -url "http://127.0.0.1:$port" \
    -rps 200 -duration 2s -strict -out load-smoke.json >/dev/null
  test -s load-smoke.json
  grep -q '"kind": "ignite.load-report"' load-smoke.json
  grep -q '"errors": 0,' load-smoke.json
  kill -TERM "$serve_pid"
  wait "$serve_pid"   # non-zero (unclean drain) fails the build via set -e
  grep -q 'drained' serve.log
)

# Fleet smoke: the population sampler and metadata-budget market end to end
# — a small sampled population swept under two policies, exported as a
# versioned document, byte-identical across two runs (the fleet contract:
# same seed, same bytes). The named -race pass keeps the fleet packages'
# concurrency story (parallel-independent sampling) visible on its own.
go build -o "$smoke/ignite-fleet" ./cmd/ignite-fleet
go test -race -run 'TestSamplerDeterminism|TestMarketDeterminism|TestFleetFrontierParallelIndependence' \
  ./internal/fleet/... ./internal/experiments
(
  cd "$smoke"
  ./ignite-fleet -n 200 -duration 10s -policies lru,topk -budgets 2,8 \
    -out fleet-a >/dev/null
  ./ignite-fleet -n 200 -duration 10s -policies lru,topk -budgets 2,8 \
    -out fleet-b >/dev/null
  test -s fleet-a/fleet-frontier.json
  grep -q '"kind": "ignite.experiment-result"' fleet-a/fleet-frontier.json
  diff fleet-a/fleet-frontier.json fleet-b/fleet-frontier.json
  python3 "$OLDPWD/scripts/fleet_frontier.py" fleet-a/fleet-frontier.json >fleet.tsv
  test -s fleet.tsv
)

# Distributed smoke: the same small sweep three ways — single-process,
# distributed across two spawned workers writing a content-addressed store,
# and a warm re-run over the sealed store (which must compute nothing
# remotely). All three documents must be byte-identical modulo the
# generation timestamp; -parallel and -target-instr are held constant
# because both are part of the cell-cache manifest. The named -race pass
# keeps the coordinator's work-stealing and failover paths honest.
go test -race ./internal/dist
(
  cd "$smoke"
  ./ignite-bench \
    -exp fig1 -workloads Fib-G,Auth-G -target-instr 100000 -parallel 2 \
    -out dist-local >/dev/null
  ./ignite-bench \
    -exp fig1 -workloads Fib-G,Auth-G -target-instr 100000 -parallel 2 \
    -workers 2 -store cellstore -out dist-cold >/dev/null 2>dist-cold.log
  grep -q 'store: sealed 4 record' dist-cold.log
  ./ignite-bench \
    -exp fig1 -workloads Fib-G,Auth-G -target-instr 100000 -parallel 2 \
    -workers 2 -store cellstore -out dist-warm >/dev/null 2>dist-warm.log
  grep -q 'dist: 0 task(s) completed remotely' dist-warm.log
  grep -q 'store: 4 hit(s)' dist-warm.log
  diff <(grep -v '"generated"' dist-local/fig1.json) \
       <(grep -v '"generated"' dist-cold/fig1.json)
  diff <(grep -v '"generated"' dist-local/fig1.json) \
       <(grep -v '"generated"' dist-warm/fig1.json)
)

# Self-healing smoke: the same sweep on a supervised fleet with a worker
# SIGKILLed mid-run. The supervisor must resurrect the victim on its old
# address, the prober re-admit it, and the run still exit 0 with a document
# byte-identical (modulo the generation timestamp) to the single-process
# baseline and a store that reseals to the same Merkle root warm. The named
# -race passes keep the breaker/prober/hedge/supervisor paths and the full
# chaos harness visible on their own.
go test -race -run 'TestSupervisorRestartsWorker|TestProberReadmitsRestartedWorker|TestHedgedDispatch|TestTaskCancelNotWorkerFault|TestWorkerDrainShedsInFlightFailover' \
  ./internal/dist
go test -race -run 'TestChaosSweepByteIdentical' -timeout 10m ./internal/chaos
(
  cd "$smoke"
  # All 20 workloads (40 cells, a few seconds of sweep) so the SIGKILL
  # reliably lands mid-run; the single-process baseline uses the same
  # manifest-visible flags.
  ./ignite-bench \
    -exp fig1 -target-instr 100000 -parallel 2 \
    -out chaos-base >/dev/null
  ./ignite-bench \
    -exp fig1 -target-instr 100000 -parallel 2 \
    -spawn-workers 2 -store chaos-store -out chaos-cold >/dev/null 2>chaos-cold.log &
  bench_pid=$!
  # SIGKILL one spawned worker shortly after it appears: exact process
  # name plus a -worker argv check, so neither the coordinating bench nor
  # any shell whose command line merely mentions the pattern can be the
  # victim.
  victim=""
  for _ in $(seq 100); do
    for pid in $(pgrep -x ignite-bench || true); do
      if tr '\0' ' ' <"/proc/$pid/cmdline" 2>/dev/null | grep -q -- '-worker -listen'; then
        victim="$pid"
        break 2
      fi
    done
    sleep 0.05
  done
  test -n "$victim"
  sleep 0.5
  kill -KILL "$victim"
  wait "$bench_pid"   # non-zero (a lost cell) fails the build via set -e
  grep -q 'store: sealed 40 record' chaos-cold.log
  grep -Eq 'dist: [1-9][0-9]* worker restart' chaos-cold.log
  diff <(grep -v '"generated"' chaos-base/fig1.json) \
       <(grep -v '"generated"' chaos-cold/fig1.json)
  root_cold="$(sed -n 's/.*merkle root \([0-9a-f]*\).*/\1/p' chaos-cold.log)"
  ./ignite-bench \
    -exp fig1 -target-instr 100000 -parallel 2 \
    -store chaos-store -out chaos-warm >/dev/null 2>chaos-warm.log
  grep -q 'store: 40 hit(s)' chaos-warm.log
  root_warm="$(sed -n 's/.*merkle root \([0-9a-f]*\).*/\1/p' chaos-warm.log)"
  test -n "$root_cold"
  test "$root_cold" = "$root_warm"
)

# Resume smoke: a journaled run, then a second run resumed from that journal
# into a different output dir — the exported documents must match except for
# the generation timestamp.
(
  cd "$smoke"
  ./ignite-bench \
    -exp fig1 -workloads Fib-G -target-instr 200000 \
    -journal run.journal.jsonl -out resume-a >/dev/null
  ./ignite-bench \
    -exp fig1 -workloads Fib-G -target-instr 200000 \
    -journal run.journal.jsonl -resume -out resume-b >/dev/null
  diff <(grep -v '"generated"' resume-a/fig1.json) \
       <(grep -v '"generated"' resume-b/fig1.json)
)

echo "ci: ok (build, vet, race tests, examples, JSON export, checked smoke, bench smoke, batching race pass, mutation smoke, chaos, serve smoke, fleet smoke, dist smoke, self-healing smoke, resume)"
