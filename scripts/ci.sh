#!/usr/bin/env bash
# Tier-1 gate: build, vet, and run the full test suite under the race
# detector. The cell scheduler runs (workload, config) simulations on a
# bounded worker pool, so every test that goes through internal/experiments
# exercises the concurrent path; -race keeps that path honest.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
