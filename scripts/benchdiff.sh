#!/usr/bin/env bash
# Benchmark the engine hot path and compare against the stored baseline.
#
# Usage:
#   scripts/benchdiff.sh            # run, diff against bench/engine-baseline.txt
#   scripts/benchdiff.sh -update    # run and (re)write the baseline
#
# BENCH_COUNT overrides the repetition count (default 10). Comparison uses
# benchstat when installed; otherwise a raw fallback compares per-benchmark
# minima — the right statistic on a noisy shared machine, where every source
# of interference only ever adds time.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="bench/engine-baseline.txt"
count="${BENCH_COUNT:-10}"
update=0
[[ "${1:-}" == "-update" ]] && update=1

mkdir -p bench
new="$(mktemp)"
trap 'rm -f "$new"' EXIT

echo "benchdiff: go test -run '^\$' -bench=. -count=$count -benchmem ./internal/engine" >&2
go test -run '^$' -bench=. -count="$count" -benchmem ./internal/engine | tee "$new"

if [[ $update -eq 1 || ! -s $baseline ]]; then
  cp "$new" "$baseline"
  echo "benchdiff: wrote baseline $baseline" >&2
  exit 0
fi

if command -v benchstat >/dev/null 2>&1; then
  benchstat "$baseline" "$new"
else
  echo "benchdiff: benchstat not installed; comparing per-benchmark minima" >&2
  awk -v base="$baseline" '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = $3 + 0
      if (FILENAME == base) {
        if (!(name in old) || ns < old[name]) old[name] = ns
      } else {
        if (!(name in cur) || ns < cur[name]) cur[name] = ns
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
      }
    }
    END {
      printf "%-34s %15s %15s %9s\n", "benchmark", "old min ns/op", "new min ns/op", "delta"
      for (i = 1; i <= n; i++) {
        name = order[i]
        if (name in old)
          printf "%-34s %15.0f %15.0f %+8.1f%%\n", name, old[name], cur[name],
            (cur[name] - old[name]) * 100 / old[name]
        else
          printf "%-34s %15s %15.0f %9s\n", name, "-", cur[name], "new"
      }
    }' "$baseline" "$new"
fi
